package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Diurnal returns n requests from a non-homogeneous Poisson process whose
// rate follows a day-like sinusoid,
//
//	rate(t) = base * (1 + amplitude*sin(2*pi*t/period)),
//
// sampled by Lewis-Shedler thinning against the peak rate. RAGPulse-style
// production RAG traffic is diurnal with load swinging around a baseline;
// amplitude in [0, 1] sets the swing (1 means the trough reaches zero).
// Deterministic by seed.
func Diurnal(n int, base, amplitude, period float64, seed int64) ([]Request, error) {
	if n < 0 || base <= 0 || period <= 0 {
		return nil, fmt.Errorf("trace: need n >= 0, positive base rate and period")
	}
	if amplitude < 0 || amplitude > 1 {
		return nil, fmt.Errorf("trace: diurnal amplitude must be in [0, 1], got %g", amplitude)
	}
	rng := rand.New(rand.NewSource(seed))
	peak := base * (1 + amplitude)
	out := make([]Request, 0, n)
	t := 0.0
	for len(out) < n {
		t += rng.ExpFloat64() / peak
		rate := base * (1 + amplitude*math.Sin(2*math.Pi*t/period))
		if rng.Float64()*peak < rate {
			out = append(out, Request{ID: len(out), Arrival: t})
		}
	}
	return out, nil
}

// MMPP returns n requests from a Markov-modulated Poisson process: the
// arrival rate switches between the given states (e.g. a quiet rate and a
// burst rate), holding each for an exponentially distributed sojourn with
// the given mean before cycling to the next. Two well-separated rates give
// the on/off burstiness real RAG request logs show. Deterministic by seed.
func MMPP(n int, rates []float64, meanSojourn float64, seed int64) ([]Request, error) {
	if n < 0 || len(rates) == 0 || meanSojourn <= 0 {
		return nil, fmt.Errorf("trace: need n >= 0, at least one state rate, and a positive mean sojourn")
	}
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("trace: MMPP state %d rate must be positive, got %g", i, r)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, 0, n)
	t := 0.0
	state := 0
	remaining := rng.ExpFloat64() * meanSojourn
	for len(out) < n {
		// Exponential races are memoryless, so redrawing the arrival gap
		// after a state switch keeps the process exact.
		gap := rng.ExpFloat64() / rates[state]
		if gap < remaining {
			t += gap
			remaining -= gap
			out = append(out, Request{ID: len(out), Arrival: t})
			continue
		}
		t += remaining
		state = (state + 1) % len(rates)
		remaining = rng.ExpFloat64() * meanSojourn
	}
	return out, nil
}

// Gamma returns n requests with i.i.d. Gamma-distributed inter-arrival
// times of mean 1/rate and the given shape. Shape 1 recovers Poisson;
// shape < 1 yields over-dispersed, heavy-tailed gaps (clumped arrivals
// separated by long lulls); shape > 1 is smoother than Poisson.
// Deterministic by seed.
func Gamma(n int, rate, shape float64, seed int64) ([]Request, error) {
	if n < 0 || rate <= 0 || shape <= 0 {
		return nil, fmt.Errorf("trace: need n >= 0 and positive rate and shape")
	}
	rng := rand.New(rand.NewSource(seed))
	scale := 1 / (rate * shape) // mean gap = shape*scale = 1/rate
	out := make([]Request, n)
	t := 0.0
	for i := range out {
		t += gammaSample(rng, shape) * scale
		out[i] = Request{ID: i, Arrival: t}
	}
	return out, nil
}

// gammaSample draws Gamma(shape, 1) via Marsaglia-Tsang squeeze; shapes
// below one are boosted through Gamma(shape+1) * U^(1/shape).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
