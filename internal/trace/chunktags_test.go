package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestChunkTagRoundtrip: retrieved-chunk ID tags survive both file
// formats exactly, and the two formats agree with each other.
func TestChunkTagRoundtrip(t *testing.T) {
	reqs, err := Poisson(80, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err = WithDocZipf(reqs, 500, 4, 1.3, 9)
	if err != nil {
		t.Fatal(err)
	}

	var jbuf, cbuf bytes.Buffer
	if err := WriteJSON(&jbuf, "tags", reqs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cbuf, reqs); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string][]Request{"json": fromJSON, "csv": fromCSV} {
		if len(got) != len(reqs) {
			t.Fatalf("%s: got %d requests, want %d", name, len(got), len(reqs))
		}
		for i := range got {
			if !got[i].Tagged() {
				t.Fatalf("%s: request %d lost its tags", name, i)
			}
			if len(got[i].ChunkIDs) != len(reqs[i].ChunkIDs) {
				t.Fatalf("%s: request %d has %d chunks, want %d", name, i, len(got[i].ChunkIDs), len(reqs[i].ChunkIDs))
			}
			for j := range got[i].ChunkIDs {
				if got[i].ChunkIDs[j] != reqs[i].ChunkIDs[j] {
					t.Fatalf("%s: request %d chunk %d = %d, want %d", name, i, j, got[i].ChunkIDs[j], reqs[i].ChunkIDs[j])
				}
			}
		}
	}
}

// TestUntaggedBackCompat: trace files from before the cache PR — JSON
// without chunk_ids, CSV with the old 4-column header — load untagged,
// and untagged requests bypass the cache (Tagged() false).
func TestUntaggedBackCompat(t *testing.T) {
	got, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":0.5},{"arrival":1.5,"prompt_tokens":256}]}`))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Tagged() {
			t.Errorf("json request %d tagged from a tagless file: %v", i, r.ChunkIDs)
		}
	}

	old := "arrival,triggers,prompt_tokens,output_tokens\n0.5,,0,0\n1.5,3;7,256,64\n"
	got, err = ReadCSV(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d requests, want 2", len(got))
	}
	for i, r := range got {
		if r.Tagged() {
			t.Errorf("csv request %d tagged from a 4-column file: %v", i, r.ChunkIDs)
		}
	}
	if got[1].PromptTokens != 256 || len(got[1].Triggers) != 2 {
		t.Errorf("4-column row misparsed: %+v", got[1])
	}

	// Empty chunk_ids column on the new header is also untagged.
	newEmpty := "arrival,triggers,prompt_tokens,output_tokens,chunk_ids\n0.5,,0,0,\n"
	got, err = ReadCSV(strings.NewReader(newEmpty))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Tagged() {
		t.Errorf("empty chunk_ids column parsed as tags: %v", got[0].ChunkIDs)
	}
}

func TestMalformedChunkTagsRejected(t *testing.T) {
	cases := []struct {
		name string
		read func() error
	}{
		{"negative id json", func() error {
			_, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":1,"chunk_ids":[3,-1]}]}`))
			return err
		}},
		{"duplicate id json", func() error {
			_, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":1,"chunk_ids":[3,3]}]}`))
			return err
		}},
		{"non-numeric csv", func() error {
			_, err := ReadCSV(strings.NewReader("arrival,triggers,prompt_tokens,output_tokens,chunk_ids\n1.0,,0,0,3;x\n"))
			return err
		}},
		{"negative id csv", func() error {
			_, err := ReadCSV(strings.NewReader("arrival,triggers,prompt_tokens,output_tokens,chunk_ids\n1.0,,0,0,3;-2\n"))
			return err
		}},
	}
	for _, tc := range cases {
		if tc.read() == nil {
			t.Errorf("%s: malformed tags loaded without error", tc.name)
		}
	}
}
