// Package trace generates deterministic synthetic request workloads: the
// arrival processes and per-sequence iterative-retrieval trigger positions
// the paper's studies assume (§4, §5.3). All generators are pure functions
// of their seed.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// Request is one serving request.
type Request struct {
	// ID is a dense index.
	ID int
	// Arrival is the arrival time in seconds from epoch.
	Arrival float64
	// Triggers are decode token positions (1-based, strictly inside the
	// generation) at which the request issues an iterative retrieval.
	Triggers []int
	// PromptTokens and OutputTokens are this request's sequence shape —
	// real RAG traffic (RAGPulse) has heavy-tailed per-request prompt and
	// output lengths, and the executors cost batches at the padded shape
	// of their members. 0 means the schema-wide constant
	// (Schema.PrefixTokens / Schema.DecodeTokens), which is also what
	// shape-less recorded traces load as.
	PromptTokens int
	// OutputTokens is the generation length; 0 means the schema constant.
	OutputTokens int
	// ChunkIDs identifies the retrieved document chunks the request's
	// prefix is built from, in prompt order. Tagged requests are what the
	// prefix/KV cache tier (internal/cache) keys on: two requests sharing
	// a chunk-ID prefix share cached KV. Empty means untagged — the
	// request bypasses the cache entirely, which is how traces recorded
	// before the field existed keep replaying unchanged.
	ChunkIDs []int
}

// Shaped reports whether the request carries an explicit sequence shape.
func (r Request) Shaped() bool { return r.PromptTokens > 0 || r.OutputTokens > 0 }

// Tagged reports whether the request carries retrieved-chunk IDs.
func (r Request) Tagged() bool { return len(r.ChunkIDs) > 0 }

// Poisson returns n requests with exponential inter-arrival times at the
// given rate (requests/second).
func Poisson(n int, rate float64, seed int64) ([]Request, error) {
	if n < 0 || rate <= 0 {
		return nil, fmt.Errorf("trace: need n >= 0 and positive rate")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / rate
		out[i] = Request{ID: i, Arrival: t}
	}
	return out, nil
}

// Burst returns n requests all arriving at time zero — the §7.2
// micro-batching scenario.
func Burst(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{ID: i}
	}
	return out
}

// Triggers draws `count` distinct iterative-retrieval positions uniformly
// from (0, decodeTokens), sorted ascending — §5.3: "each retrieval is
// triggered at random intervals during the 256-token decoding process,
// with retrievals uniformly distributed across token positions".
func Triggers(count, decodeTokens int, rng *rand.Rand) []int {
	if count <= 0 || decodeTokens <= 1 {
		return nil
	}
	if count > decodeTokens-1 {
		count = decodeTokens - 1
	}
	seen := make(map[int]bool, count)
	out := make([]int, 0, count)
	for len(out) < count {
		p := 1 + rng.Intn(decodeTokens-1)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// TriggersFor synthesizes one request's trigger positions as a pure
// function of its ID. Executors call it when a trace entry carries no
// recorded positions, so the live runtime and the simulators park every
// sequence at identical tokens by construction — use WithTriggers (or a
// recorded trace) to control the positions instead. The multiplier
// decorrelates neighboring IDs.
func TriggersFor(id, count, decodeTokens int) []int {
	rng := rand.New(rand.NewSource(int64(id) * 0x9E3779B9))
	return Triggers(count, decodeTokens, rng)
}

// WithTriggers decorates requests with iterative-retrieval positions.
func WithTriggers(reqs []Request, perRequest, decodeTokens int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		r.Triggers = Triggers(perRequest, decodeTokens, rng)
		out[i] = r
	}
	return out
}
