package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestLognormalLengths(t *testing.T) {
	d, err := LognormalLengths(512, 0.6, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	n := 20000
	lo, hi := math.MaxInt, 0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 4096 {
			t.Fatalf("sample %d outside [1, 4096]", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += float64(v)
	}
	// Lognormal mean = median * exp(sigma^2/2) ~ 613; the clamp shaves a
	// little off the tail.
	mean := sum / float64(n)
	if mean < 500 || mean > 700 {
		t.Errorf("lognormal mean %.1f outside the expected ~613 band", mean)
	}
	if hi <= 2*lo {
		t.Errorf("distribution not spread: min %d max %d", lo, hi)
	}
}

func TestEmpiricalLengths(t *testing.T) {
	d, err := EmpiricalLengths([]LengthBucket{
		{Tokens: 2048, Weight: 1}, // out of order on purpose
		{Tokens: 128, Weight: 6},
		{Tokens: 512, Weight: 3},
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := map[int]int{}
	n := 10000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	if len(counts) != 3 {
		t.Fatalf("sampled values %v, want exactly the three buckets", counts)
	}
	if f := float64(counts[128]) / float64(n); f < 0.55 || f > 0.65 {
		t.Errorf("128-token bucket frequency %.3f, want ~0.6", f)
	}
	if f := float64(counts[2048]) / float64(n); f < 0.07 || f > 0.13 {
		t.Errorf("2048-token bucket frequency %.3f, want ~0.1", f)
	}
}

func TestConstantLengths(t *testing.T) {
	d, err := ConstantLengths(256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		if v := d.Sample(rng); v != 256 {
			t.Fatalf("constant sample %d", v)
		}
	}
}

// TestLengthDistRejectsDegenerate: unservable parameters — 0-token
// outputs, clamps below one token, medians beyond the model-context clamp
// — must be rejected descriptively at construction, never sampled.
func TestLengthDistRejectsDegenerate(t *testing.T) {
	cases := []struct {
		name string
		err  error
		frag string
	}{
		{"constant-zero", errOf(ConstantLengths(0)), "unservable"},
		{"constant-negative", errOf(ConstantLengths(-5)), "unservable"},
		{"lognormal-zero-median", errOf(LognormalLengths(0, 0.5, 1024)), "unservable"},
		{"lognormal-negative-sigma", errOf(LognormalLengths(512, -1, 1024)), "sigma"},
		{"lognormal-zero-max", errOf(LognormalLengths(512, 0.5, 0)), "model context"},
		{"lognormal-median-over-max", errOf(LognormalLengths(512, 0.5, 256)), "clamp"},
		{"empirical-empty", errOf(EmpiricalLengths(nil, 1024)), "empty"},
		{"empirical-zero-token", errOf(EmpiricalLengths([]LengthBucket{{Tokens: 0, Weight: 1}}, 1024)), "unservable"},
		{"empirical-over-max", errOf(EmpiricalLengths([]LengthBucket{{Tokens: 2048, Weight: 1}}, 1024)), "clamp"},
		{"empirical-bad-weight", errOf(EmpiricalLengths([]LengthBucket{{Tokens: 128, Weight: 0}}, 1024)), "weight"},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: degenerate input accepted", tc.name)
			continue
		}
		if !strings.Contains(tc.err.Error(), tc.frag) {
			t.Errorf("%s: error %q should mention %q", tc.name, tc.err, tc.frag)
		}
	}
}

func errOf(_ LengthDist, err error) error { return err }

func TestWithShapes(t *testing.T) {
	reqs, err := Poisson(100, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	prompt, err := LognormalLengths(512, 0.6, 4096)
	if err != nil {
		t.Fatal(err)
	}
	out, err := LognormalLengths(128, 0.8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	shaped := WithShapes(reqs, prompt, out, 11)
	if len(shaped) != len(reqs) {
		t.Fatalf("length changed: %d vs %d", len(shaped), len(reqs))
	}
	for i, r := range shaped {
		if !r.Shaped() || r.PromptTokens < 1 || r.OutputTokens < 1 {
			t.Fatalf("request %d not shaped: %+v", i, r)
		}
		if r.Arrival != reqs[i].Arrival || r.ID != reqs[i].ID {
			t.Fatalf("request %d identity mutated", i)
		}
		if reqs[i].Shaped() {
			t.Fatalf("input slice mutated at %d", i)
		}
	}
	// One-sided shaping: unset prompt leaves the field at the schema
	// constant marker.
	oneSided := WithShapes(reqs, LengthDist{}, out, 11)
	for i, r := range oneSided {
		if r.PromptTokens != 0 || r.OutputTokens < 1 {
			t.Fatalf("one-sided shaping wrong at %d: %+v", i, r)
		}
	}
	// An unset distribution must preserve shapes the trace already
	// carries (recorded traces), not zero them.
	reshaped := WithShapes(shaped, LengthDist{}, out, 12)
	for i, r := range reshaped {
		if r.PromptTokens != shaped[i].PromptTokens {
			t.Fatalf("recorded prompt destroyed at %d: %d -> %d", i, shaped[i].PromptTokens, r.PromptTokens)
		}
		if r.OutputTokens < 1 {
			t.Fatalf("output not redrawn at %d: %+v", i, r)
		}
	}
	// Deterministic by seed.
	again := WithShapes(reqs, prompt, out, 11)
	for i := range shaped {
		if shaped[i].PromptTokens != again[i].PromptTokens || shaped[i].OutputTokens != again[i].OutputTokens {
			t.Fatalf("non-deterministic shapes at %d", i)
		}
	}
}
