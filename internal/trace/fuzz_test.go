package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the trace file readers. `go test` runs the seed corpus
// as regular tests in CI; `go test -fuzz FuzzReadJSON ./internal/trace`
// explores further. The invariant under arbitrary input: the readers
// either return a descriptive error or a normalized, replayable trace —
// never a panic, and never a request the executors cannot serve (negative
// shapes, non-positive triggers, invalid arrivals).

func checkNormalized(t *testing.T, reqs []Request) {
	t.Helper()
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has non-dense ID %d", i, r.ID)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatalf("requests not sorted at %d", i)
		}
		if r.Arrival < 0 || r.PromptTokens < 0 || r.OutputTokens < 0 {
			t.Fatalf("unservable request survived normalization: %+v", r)
		}
		for j, p := range r.Triggers {
			if p < 1 || (j > 0 && p < r.Triggers[j-1]) {
				t.Fatalf("bad trigger list %v at request %d", r.Triggers, i)
			}
		}
	}
}

func FuzzReadJSON(f *testing.F) {
	f.Add(`{"requests":[{"arrival":1.5,"triggers":[3,9],"prompt_tokens":512,"output_tokens":128}]}`)
	f.Add(`{"name":"t","requests":[{"arrival":0},{"arrival":2.25}]}`)
	f.Add(`{"requests":[{"arrival":1,"prompt_tokens":-3}]}`)
	f.Add(`{"requests":[{"arrival":-1}]}`)
	f.Add(`{"requests":[{"arrival":1e308},{"arrival":1e308}]}`)
	f.Add(`not json at all`)
	f.Add(`{"requests":[{"arrival":2,"triggers":[0]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		reqs, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		checkNormalized(t, reqs)
		// What parsed must round-trip: write it back and reread.
		var buf bytes.Buffer
		if err := WriteJSON(&buf, "fuzz", reqs); err != nil {
			t.Fatalf("writing a normalized trace failed: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("rereading a written trace failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round-trip changed length: %d vs %d", len(again), len(reqs))
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	f.Add("arrival,triggers,prompt_tokens,output_tokens\n1.5,3;9,512,128\n")
	f.Add("arrival,triggers\n0.5,\n2.5,7\n") // shape-less, PR-3-era layout
	f.Add("1.0,,256,64\n")                   // headerless
	f.Add("arrival,triggers,prompt_tokens,output_tokens\n1.0,,-1,\n")
	f.Add("x,y\nz\n")
	f.Add("")
	f.Add("1.0,2;x\n")
	f.Fuzz(func(t *testing.T, data string) {
		reqs, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		checkNormalized(t, reqs)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, reqs); err != nil {
			t.Fatalf("writing a normalized trace failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("rereading a written trace failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round-trip changed length: %d vs %d", len(again), len(reqs))
		}
		for i := range again {
			if again[i].PromptTokens != reqs[i].PromptTokens || again[i].OutputTokens != reqs[i].OutputTokens {
				t.Fatalf("shape fields drifted through CSV round-trip at %d", i)
			}
		}
	})
}
