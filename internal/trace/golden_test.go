package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// Golden seed-determinism tests: every generator in this package is a pure
// function of its seed, and replays must be reproducible across platforms
// and Go releases we build on — a saved trace, a controller decision log,
// and a cross-check all assume the same seed regenerates the same bytes.
// Each case renders the generated trace through the canonical JSON writer
// and compares the SHA-256 of the bytes against a recorded digest, so any
// drift — in the RNG stream, the samplers, or the serialization — fails
// loudly with the new digest to update.

func traceDigest(t *testing.T, reqs []Request) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "golden", reqs); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestGeneratorsGoldenDeterminism(t *testing.T) {
	mustLognormal := func(median, sigma float64, max int) LengthDist {
		d, err := LognormalLengths(median, sigma, max)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	mustEmpirical := func(buckets []LengthBucket, max int) LengthDist {
		d, err := EmpiricalLengths(buckets, max)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name string
		gen  func() ([]Request, error)
		want string
	}{
		{"poisson", func() ([]Request, error) { return Poisson(200, 25, 42) },
			"95b5682c96fce5e67d461f7792c8a0a3093337a9373d97d9808f15ceb844d36d"},
		{"diurnal", func() ([]Request, error) { return Diurnal(200, 20, 0.7, 120, 42) },
			"fab0b9d66ea2cfa58753847eeb7da24a49b546064a41c0dcebd3fbcaed639dcc"},
		{"mmpp", func() ([]Request, error) { return MMPP(200, []float64{5, 50}, 30, 42) },
			"06c65c0fa316315ca7f3b441acc52cf8534b57a483a15a534407d712606bcadc"},
		{"gamma", func() ([]Request, error) { return Gamma(200, 25, 0.5, 42) },
			"d82ee9fe4dda79ce6b18a53e408063700ac363fc878ce445a80ce799eaeabb04"},
		{"triggers", func() ([]Request, error) {
			reqs, err := Poisson(100, 25, 42)
			if err != nil {
				return nil, err
			}
			return WithTriggers(reqs, 3, 256, 42), nil
		}, "4663fbeb0584ef48a3b077f6725cbf0cf5bee7e47af428bf5c2709c2ecef1929"},
		{"lognormal-shapes", func() ([]Request, error) {
			reqs, err := Poisson(100, 25, 42)
			if err != nil {
				return nil, err
			}
			return WithShapes(reqs, mustLognormal(512, 0.6, 4096), mustLognormal(128, 0.8, 1024), 42), nil
		}, "3ee1bb9cb7b8b3ead7612872ad5333a5c6d7a7d1295359cd047c92ec682d1325"},
		{"empirical-shapes", func() ([]Request, error) {
			reqs, err := Poisson(100, 25, 42)
			if err != nil {
				return nil, err
			}
			hist := []LengthBucket{{Tokens: 128, Weight: 5}, {Tokens: 512, Weight: 3}, {Tokens: 2048, Weight: 1}}
			return WithShapes(reqs, mustEmpirical(hist, 4096), LengthDist{}, 42), nil
		}, "3b675675f3a02c26795246ae98297a1b79308e28110de6470273c604bf8af86c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reqs, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			got := traceDigest(t, reqs)
			if got != tc.want {
				t.Errorf("%s trace digest drifted:\n got  %s\n want %s\n(seeded generators must be byte-stable; if the change is intentional, update the golden)",
					tc.name, got, tc.want)
			}
			// Regenerating must reproduce the digest within one process too.
			again, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			if d := traceDigest(t, again); d != got {
				t.Errorf("%s not deterministic across calls: %s vs %s", tc.name, d, got)
			}
		})
	}
}

// TestTriggersForStable pins the ID-seeded trigger synthesis the executors
// fall back to: both the live runtime and the simulators call TriggersFor
// independently, so its output per (id, count, tokens) must never drift.
func TestTriggersForStable(t *testing.T) {
	want := map[int][]int{
		0: {145, 160, 164},
		1: {45, 147, 195},
		7: {74, 93, 188},
	}
	for id, exp := range want {
		got := TriggersFor(id, 3, 256)
		if fmt.Sprint(got) != fmt.Sprint(exp) {
			t.Errorf("TriggersFor(%d, 3, 256) = %v, want %v", id, got, exp)
		}
	}
}
