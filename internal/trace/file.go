package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The on-disk trace formats, for replaying recorded or externally
// generated workloads (RAGPulse-style request logs) through the serving
// runtime and for persisting synthetic traces as CI artifacts:
//
//   - JSON: {"name": ..., "requests": [{"arrival": s, "triggers": [..],
//     "prompt_tokens": n, "output_tokens": n, "chunk_ids": [..]}]}
//   - CSV:  header "arrival,triggers,prompt_tokens,output_tokens,chunk_ids",
//     one row per request, triggers and chunk IDs as ';'-joined lists
//     (empty for none).
//
// The per-request shape fields are optional in both formats: absent (or
// empty/zero) means the schema-wide constant, which is how shape-less
// traces recorded before the fields existed keep loading unchanged. The
// retrieved-chunk ID tags (the prefix-cache key) are equally optional:
// untagged rows load as cache-bypassing requests, so pre-cache trace files
// replay bit-identically.
//
// Readers accept requests in any order, validate arrivals and shapes, and
// return them sorted by arrival time with dense IDs, so a loaded trace is
// always replayable as-is.

type fileTrace struct {
	Name     string    `json:"name,omitempty"`
	Requests []fileReq `json:"requests"`
}

type fileReq struct {
	ID           int     `json:"id"`
	Arrival      float64 `json:"arrival"`
	Triggers     []int   `json:"triggers,omitempty"`
	PromptTokens int     `json:"prompt_tokens,omitempty"`
	OutputTokens int     `json:"output_tokens,omitempty"`
	ChunkIDs     []int   `json:"chunk_ids,omitempty"`
}

// WriteJSON renders a trace as indented JSON. name labels the trace in the
// file (it may be empty).
func WriteJSON(w io.Writer, name string, reqs []Request) error {
	ft := fileTrace{Name: name, Requests: make([]fileReq, len(reqs))}
	for i, r := range reqs {
		ft.Requests[i] = fileReq{
			ID: r.ID, Arrival: r.Arrival, Triggers: r.Triggers,
			PromptTokens: r.PromptTokens, OutputTokens: r.OutputTokens,
			ChunkIDs: r.ChunkIDs,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ft)
}

// ReadJSON parses a JSON trace and returns its requests sorted by arrival
// with dense IDs. Unknown fields are ignored, so externally recorded logs
// carrying extra per-request metadata replay as-is.
func ReadJSON(r io.Reader) ([]Request, error) {
	var ft fileTrace
	if err := json.NewDecoder(r).Decode(&ft); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON trace: %w", err)
	}
	out := make([]Request, len(ft.Requests))
	for i, fr := range ft.Requests {
		out[i] = Request{
			Arrival: fr.Arrival, Triggers: fr.Triggers,
			PromptTokens: fr.PromptTokens, OutputTokens: fr.OutputTokens,
			ChunkIDs: fr.ChunkIDs,
		}
	}
	return normalize(out)
}

// WriteCSV renders a trace as CSV with an
// "arrival,triggers,prompt_tokens,output_tokens,chunk_ids" header.
// Unshaped requests write empty shape cells and untagged requests an empty
// chunk-ID cell, so a constant-shape untagged trace round-trips without
// inventing explicit lengths or tags.
func WriteCSV(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival", "triggers", "prompt_tokens", "output_tokens", "chunk_ids"}); err != nil {
		return err
	}
	shapeCell := func(n int) string {
		if n == 0 {
			return ""
		}
		return strconv.Itoa(n)
	}
	joinInts := func(v []int) string {
		parts := make([]string, len(v))
		for i, p := range v {
			parts[i] = strconv.Itoa(p)
		}
		return strings.Join(parts, ";")
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.Arrival, 'g', -1, 64),
			joinInts(r.Triggers),
			shapeCell(r.PromptTokens),
			shapeCell(r.OutputTokens),
			joinInts(r.ChunkIDs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace (with or without the header row) and returns
// its requests sorted by arrival with dense IDs.
func ReadCSV(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: decoding CSV trace: %w", err)
	}
	var out []Request
	for i, rec := range recs {
		if len(rec) == 0 {
			continue
		}
		arr, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err != nil {
			if i == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("trace: CSV row %d: bad arrival %q", i+1, rec[0])
		}
		req := Request{Arrival: arr}
		if len(rec) > 1 && strings.TrimSpace(rec[1]) != "" {
			for _, f := range strings.Split(rec[1], ";") {
				p, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("trace: CSV row %d: bad trigger %q", i+1, f)
				}
				req.Triggers = append(req.Triggers, p)
			}
		}
		// Optional shape columns; rows from shape-less traces (2 columns)
		// or with empty cells load as 0 = schema constant.
		if len(rec) > 2 && strings.TrimSpace(rec[2]) != "" {
			p, err := strconv.Atoi(strings.TrimSpace(rec[2]))
			if err != nil {
				return nil, fmt.Errorf("trace: CSV row %d: bad prompt_tokens %q", i+1, rec[2])
			}
			req.PromptTokens = p
		}
		if len(rec) > 3 && strings.TrimSpace(rec[3]) != "" {
			o, err := strconv.Atoi(strings.TrimSpace(rec[3]))
			if err != nil {
				return nil, fmt.Errorf("trace: CSV row %d: bad output_tokens %q", i+1, rec[3])
			}
			req.OutputTokens = o
		}
		// Optional retrieved-chunk ID column; rows from pre-cache traces
		// (4 columns) or with an empty cell load untagged.
		if len(rec) > 4 && strings.TrimSpace(rec[4]) != "" {
			for _, f := range strings.Split(rec[4], ";") {
				id, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("trace: CSV row %d: bad chunk ID %q", i+1, f)
				}
				req.ChunkIDs = append(req.ChunkIDs, id)
			}
		}
		out = append(out, req)
	}
	return normalize(out)
}

// Save writes a trace to path, choosing the format by extension (.json or
// .csv). The extension is validated before the file is touched, so an
// unsupported path never truncates existing data.
func Save(path string, reqs []Request) error {
	ext := strings.ToLower(filepath.Ext(path))
	if ext != ".json" && ext != ".csv" {
		return fmt.Errorf("trace: unknown trace extension %q (want .json or .csv)", ext)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if ext == ".json" {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := WriteJSON(f, name, reqs); err != nil {
			return err
		}
	} else if err := WriteCSV(f, reqs); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trace from path, choosing the format by extension (.json or
// .csv).
func Load(path string) ([]Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		return ReadJSON(f)
	case ".csv":
		return ReadCSV(f)
	default:
		return nil, fmt.Errorf("trace: unknown trace extension %q (want .json or .csv)", ext)
	}
}

// normalize validates arrivals, shapes, and chunk-ID tags, sorts by
// arrival time, and assigns dense IDs, making any well-formed file
// replayable directly.
// Recorded trigger positions are sorted ascending and must be positive —
// the executors' decode loops advance token by token, so positions out of
// order would run virtual time backward. Recorded shapes must be
// non-negative (0 means the schema constant); a negative prompt or output
// length is unservable and rejected descriptively.
func normalize(reqs []Request) ([]Request, error) {
	for i, r := range reqs {
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) || r.Arrival < 0 {
			return nil, fmt.Errorf("trace: request %d has invalid arrival %g", i, r.Arrival)
		}
		sort.Ints(r.Triggers)
		if len(r.Triggers) > 0 && r.Triggers[0] < 1 {
			return nil, fmt.Errorf("trace: request %d has non-positive trigger position %d", i, r.Triggers[0])
		}
		if r.PromptTokens < 0 {
			return nil, fmt.Errorf("trace: request %d has negative prompt_tokens %d (0 means the schema constant)", i, r.PromptTokens)
		}
		if r.OutputTokens < 0 {
			return nil, fmt.Errorf("trace: request %d has negative output_tokens %d (0 means the schema constant)", i, r.OutputTokens)
		}
		// Chunk IDs are cache keys: any non-negative ID is valid, order is
		// semantic (it is the prompt's chunk order), duplicates are not (a
		// chunk appears in a prompt once).
		if len(r.ChunkIDs) > 0 {
			seen := make(map[int]bool, len(r.ChunkIDs))
			for _, id := range r.ChunkIDs {
				if id < 0 {
					return nil, fmt.Errorf("trace: request %d has negative chunk ID %d", i, id)
				}
				if seen[id] {
					return nil, fmt.Errorf("trace: request %d repeats chunk ID %d", i, id)
				}
				seen[id] = true
			}
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i := range reqs {
		reqs[i].ID = i
	}
	return reqs, nil
}
