package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// MetricsServer is the streaming metrics endpoint: it subscribes to a Bus
// and serves
//
//   - /window        — the most recent telemetry window snapshot as JSON
//   - /stream        — an SSE stream of window, switch, and decision events
//   - /debug/vars    — expvar (cumulative "rago" counters + Go runtime)
//   - /debug/pprof/  — net/http/pprof
//
// so an external autoscaler, router, or a human with curl can subscribe
// to live serving telemetry instead of polling the process. The server
// owns its listener; Addr returns the bound address (useful with ":0").
type MetricsServer struct {
	bus *Bus
	sub *Sub
	ln  net.Listener
	srv *http.Server

	counters   *counters
	lastWindow atomic.Value // Event with Kind == KindWindow
	done       chan struct{}
	closeOnce  sync.Once
}

// counters are the expvar-published cumulative counts, fed from the event
// stream.
type counters struct {
	events, windows, admitted, rejected, completed atomic.Uint64
	switches, decisions                            atomic.Uint64
	bus                                            *Bus
	sub                                            *Sub
}

func (c *counters) snapshot() map[string]any {
	pub, drop := c.bus.Stats()
	return map[string]any{
		"events":        c.events.Load(),
		"windows":       c.windows.Load(),
		"admitted":      c.admitted.Load(),
		"rejected":      c.rejected.Load(),
		"completed":     c.completed.Load(),
		"switches":      c.switches.Load(),
		"decisions":     c.decisions.Load(),
		"bus_published": pub,
		"bus_dropped":   drop,
		"sub_dropped":   c.sub.Dropped(),
	}
}

// expvar's registry is global and panics on duplicate names, so the
// "rago" var is registered once per process and reads whichever
// MetricsServer is currently live.
var (
	expOnce    sync.Once
	expCurrent atomic.Pointer[counters]
)

func publishExpvar() {
	expOnce.Do(func() {
		expvar.Publish("rago", expvar.Func(func() any {
			if c := expCurrent.Load(); c != nil {
				return c.snapshot()
			}
			return map[string]any{}
		}))
	})
}

// NewMetricsServer subscribes to the bus and starts serving on addr
// (":0" picks a free port). Close releases the listener and the
// subscription.
func NewMetricsServer(bus *Bus, addr string) (*MetricsServer, error) {
	if bus == nil {
		return nil, fmt.Errorf("obs: MetricsServer needs a non-nil bus")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{
		bus:  bus,
		sub:  bus.Subscribe(4096),
		ln:   ln,
		done: make(chan struct{}),
	}
	m.counters = &counters{bus: bus, sub: m.sub}
	publishExpvar()
	expCurrent.Store(m.counters)

	mux := http.NewServeMux()
	mux.HandleFunc("/", m.index)
	mux.HandleFunc("/window", m.window)
	mux.HandleFunc("/stream", m.stream)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	go m.consume()
	return m, nil
}

// Addr is the bound listen address (host:port).
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close stops serving and detaches from the bus. Idempotent.
func (m *MetricsServer) Close() error {
	var err error
	m.closeOnce.Do(func() {
		close(m.done)
		err = m.srv.Close()
		m.sub.Close()
	})
	return err
}

// consume drains the server's own subscription into the counters and the
// last-window snapshot. Exits when the subscription closes.
func (m *MetricsServer) consume() {
	for ev := range m.sub.Events() {
		c := m.counters
		c.events.Add(1)
		switch ev.Kind {
		case KindAdmit:
			c.admitted.Add(1)
		case KindReject:
			c.rejected.Add(1)
		case KindDecodeFinish:
			c.completed.Add(1)
		case KindWindow:
			c.windows.Add(1)
			m.lastWindow.Store(ev)
		case KindSwitchCommit:
			c.switches.Add(1)
		case KindDecision:
			c.decisions.Add(1)
		}
	}
}

func (m *MetricsServer) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "rago metrics\n\n/window\n/stream (SSE)\n/debug/vars\n/debug/pprof/\n")
}

// window serves the most recent streamed Window snapshot.
func (m *MetricsServer) window(w http.ResponseWriter, _ *http.Request) {
	ev, ok := m.lastWindow.Load().(Event)
	if !ok {
		http.Error(w, "no window snapshot streamed yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ev)
}

// streamable selects the event kinds the SSE feed forwards: the windowed
// telemetry plus control-plane happenings — not the per-request firehose,
// which belongs on a Tracer.
func streamable(k Kind) bool {
	switch k {
	case KindWindow, KindSwitchBegin, KindSwitchCommit, KindSwitchDrain, KindDecision:
		return true
	}
	return false
}

// stream is the SSE feed: each forwarded event is one `event:`/`data:`
// frame named by its kind. Every client holds its own bounded bus
// subscription, so a stalled client drops its own events without
// affecting the dataplane or other clients.
func (m *MetricsServer) stream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// Subscribe before flushing the response headers: once the client
	// sees the headers the feed is guaranteed live, so nothing published
	// after its request returns can fall in a subscription gap.
	sub := m.bus.Subscribe(512)
	defer sub.Close()
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	// Seed the stream with the last window so a new subscriber sees state
	// immediately instead of waiting out a window interval.
	if ev, ok := m.lastWindow.Load().(Event); ok {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if !streamable(ev.Kind) {
				continue
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-m.done:
			return
		}
	}
}
