package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Tracer assembles per-request span timelines from the event stream. It
// can be fed directly (Record) or attached to a Bus, where it subscribes
// with a large bounded buffer and drains on its own goroutine — fast
// enough that drops are effectively reserved for pathological runs, and
// counted (Dropped) so a broken trace is detectable rather than silent.
//
// Attach both a runtime's and a simulator's bus for the same trace, and
// Requests()/ChromeTrace() give two structurally comparable timelines —
// the span-parity contract the cross-check tests enforce and the visual
// diff Perfetto renders.
type Tracer struct {
	mu     sync.Mutex
	events []Event

	sub     *Sub
	drained chan struct{}

	// RequestTracks caps how many per-request timeline tracks the Chrome
	// export emits (requests beyond the first RequestTracks IDs still
	// appear on the resource tracks). 0 means the 256 default; negative
	// disables request tracks entirely.
	RequestTracks int
}

// NewTracer builds an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Record appends one event. Safe for concurrent use.
func (t *Tracer) Record(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Attach subscribes the tracer to a bus (buf < 1 uses 1<<16 — tracing
// wants losslessness, so the buffer is deliberately deep) and drains the
// subscription on a goroutine. Close detaches and waits for the drain.
func (t *Tracer) Attach(b *Bus, buf int) error {
	if t.sub != nil {
		return fmt.Errorf("obs: tracer already attached")
	}
	if buf < 1 {
		buf = 1 << 16
	}
	t.sub = b.Subscribe(buf)
	t.drained = make(chan struct{})
	go func() {
		defer close(t.drained)
		for ev := range t.sub.Events() {
			t.Record(ev)
		}
	}()
	return nil
}

// Close detaches an attached tracer from its bus and blocks until every
// buffered event has been recorded. No-op when not attached.
func (t *Tracer) Close() {
	if t.sub == nil {
		return
	}
	t.sub.Close()
	<-t.drained
}

// Dropped is how many events the attached subscription lost (0 when fed
// via Record only). A non-zero count means assembled spans may be
// incomplete.
func (t *Tracer) Dropped() uint64 {
	if t.sub == nil {
		return 0
	}
	return t.sub.Dropped()
}

// Events returns a copy of everything recorded so far, in receipt order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Span is one serviced interval of a request at one plan slot: queue
// entry (Enq), batch service start (Start), and completion (End), on the
// named track. Iterative rounds produce one span per visit of the
// virtual round slots; the decode span covers the whole slot tenure,
// parks included.
type Span struct {
	Req   int     `json:"req"`
	Slot  int     `json:"slot"`
	Stage string  `json:"stage"`
	Track string  `json:"track"`
	Enq   float64 `json:"enq"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Batch is the formed batch size the span was served in (1 for the
	// decode span, which occupies one continuous-batching slot).
	Batch int `json:"batch"`
}

// Stall is one iterative decode-loop park: the sequence held its decode
// slot from Park to Resume while round Round batched.
type Stall struct {
	Round  int     `json:"round"`
	Park   float64 `json:"park"`
	Resume float64 `json:"resume"`
}

// RequestTrace is one request's assembled timeline.
type RequestTrace struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"`
	Rejected bool    `json:"rejected,omitempty"`
	// DecodeStart is when the sequence acquired its decode slot; Done
	// when it finished generating (0 if the trace ended mid-flight).
	DecodeStart float64 `json:"decode_start,omitempty"`
	Done        float64 `json:"done,omitempty"`
	// Spans are the serviced intervals in start order; Stalls the
	// decode-loop parks (empty on single-retrieval plans).
	Spans  []Span  `json:"spans,omitempty"`
	Stalls []Stall `json:"stalls,omitempty"`
}

// StageVisits returns the ordered slot-name sequence of the request's
// serviced spans — the structural signature the span-parity tests compare
// between the live runtime and the simulator (timestamps differ, the
// visit order must not).
func (rt RequestTrace) StageVisits() []string {
	out := make([]string, len(rt.Spans))
	for i, s := range rt.Spans {
		out[i] = s.Stage
	}
	return out
}

// slotKey identifies per-request per-slot assembly state.
type slotKey struct{ req, slot int }

// Requests assembles the recorded events into per-request timelines,
// sorted by request ID. Events are ordered by virtual time (stable on
// ties, preserving receipt order), so streams collected from concurrent
// publishers assemble the same as single-threaded ones.
func (t *Tracer) Requests() []RequestTrace {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })

	byID := map[int]*RequestTrace{}
	get := func(id int) *RequestTrace {
		rt := byID[id]
		if rt == nil {
			rt = &RequestTrace{ID: id}
			byID[id] = rt
		}
		return rt
	}
	enq := map[slotKey]float64{} // latest queue-entry time per (req, slot)
	open := map[slotKey]Span{}   // spans started but not finished
	decEnq := map[int]float64{}  // decode queue-entry time per request
	decSlot := map[int]Event{}   // decode enqueue event per request (for naming)
	stall := map[int]Stall{}     // open park per request

	for _, ev := range evs {
		switch ev.Kind {
		case KindAdmit:
			get(ev.Req).Arrival = ev.T
		case KindReject:
			rt := get(ev.Req)
			rt.Arrival = ev.T
			rt.Rejected = true
		case KindEnqueue:
			if ev.Track == "decode" {
				decEnq[ev.Req] = ev.T
				decSlot[ev.Req] = ev
				continue
			}
			enq[slotKey{ev.Req, ev.Slot}] = ev.T
		case KindStageStart:
			k := slotKey{ev.Req, ev.Slot}
			e, ok := enq[k]
			if !ok {
				e = ev.T
			}
			open[k] = Span{
				Req: ev.Req, Slot: ev.Slot, Stage: ev.Stage, Track: ev.Track,
				Enq: e, Start: ev.T, Batch: ev.N,
			}
			delete(enq, k)
		case KindStageFinish:
			k := slotKey{ev.Req, ev.Slot}
			if s, ok := open[k]; ok {
				s.End = ev.T
				rt := get(ev.Req)
				rt.Spans = append(rt.Spans, s)
				delete(open, k)
			}
		case KindDecodeLease:
			get(ev.Req).DecodeStart = ev.T
		case KindDecodePark:
			stall[ev.Req] = Stall{Round: ev.N, Park: ev.T}
		case KindDecodeResume:
			if st, ok := stall[ev.Req]; ok {
				st.Resume = ev.T
				rt := get(ev.Req)
				rt.Stalls = append(rt.Stalls, st)
				delete(stall, ev.Req)
			}
		case KindDecodeFinish:
			rt := get(ev.Req)
			rt.Done = ev.T
			e, ok := decEnq[ev.Req]
			if !ok {
				e = rt.DecodeStart
			}
			start := rt.DecodeStart
			if start == 0 && !ok {
				start = ev.T - ev.Dur
			}
			sl := decSlot[ev.Req]
			stage, track := sl.Stage, sl.Track
			if stage == "" {
				stage, track = "decode", "decode"
			}
			rt.Spans = append(rt.Spans, Span{
				Req: ev.Req, Slot: sl.Slot, Stage: stage, Track: track,
				Enq: e, Start: start, End: ev.T, Batch: 1,
			})
		}
	}

	out := make([]RequestTrace, 0, len(byID))
	for _, rt := range byID {
		sort.SliceStable(rt.Spans, func(i, j int) bool {
			if rt.Spans[i].Start != rt.Spans[j].Start {
				return rt.Spans[i].Start < rt.Spans[j].Start
			}
			return rt.Spans[i].End < rt.Spans[j].End
		})
		out = append(out, *rt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
