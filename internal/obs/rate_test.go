package obs

import (
	"math"
	"testing"
)

func TestSteadyRateDegenerate(t *testing.T) {
	if r := SteadyRate(nil); r != 0 {
		t.Errorf("empty: got %g, want 0", r)
	}
	if r := SteadyRate([]float64{1, 2}); r != 0 {
		t.Errorf("two completions: got %g, want 0", r)
	}
	if r := SteadyRate([]float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("zero span: got %g, want 0", r)
	}
}

// Uniform completions must estimate close to the true rate.
func TestSteadyRateUniform(t *testing.T) {
	done := make([]float64, 1001)
	for i := range done {
		done[i] = float64(i) * 0.1 // 10/s for 100s
	}
	r := SteadyRate(done)
	if math.Abs(r-10)/10 > 0.05 {
		t.Errorf("uniform 10/s: got %g", r)
	}
}

// Input order must not matter (live completions are only roughly sorted).
func TestSteadyRateUnsortedInput(t *testing.T) {
	sorted := make([]float64, 200)
	for i := range sorted {
		sorted[i] = float64(i) * 0.5
	}
	shuffled := append([]float64(nil), sorted...)
	for i := range shuffled { // deterministic scramble
		j := (i * 7919) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	if a, b := SteadyRate(sorted), SteadyRate(shuffled); a != b {
		t.Errorf("order-dependent: %g vs %g", a, b)
	}
	if shuffled[0] == sorted[0] && shuffled[1] == sorted[1] {
		t.Fatal("scramble did nothing; test is vacuous")
	}
}

// A run that is mostly warmup and tail with a dense middle: the steady
// rate must see the middle, where the span-based rate dilutes it.
func TestSteadyRateIgnoresWarmupAndTail(t *testing.T) {
	var done []float64
	done = append(done, 0, 20) // sparse warmup
	for i := 0; i < 400; i++ { // dense middle: 40/s over 10s
		done = append(done, 40+float64(i)*0.025)
	}
	done = append(done, 80, 100) // sparse tail
	span := done[len(done)-1] - done[0]
	spanRate := float64(len(done)-1) / span
	steady := SteadyRate(done)
	if steady < 2*spanRate {
		t.Errorf("steady %g did not rise above diluted span rate %g", steady, spanRate)
	}
	if steady < 10 || steady > 45 {
		t.Errorf("steady %g implausible for a 40/s middle (window wider than the clump)", steady)
	}
}
