package obs

import "sort"

// SteadyRate estimates the steady-state completion rate of a run from its
// completion timestamps: the maximum completions-per-second over any
// quarter-span window anchored at a completion. The whole-span rate
// ((n-1)/span) underestimates schedules whose mean generation time is
// comparable to the run length — huge decode batches complete in a few
// clumps, and the span is mostly warmup ramp and drain tail — whereas the
// best quarter-span window sits inside the saturated middle of the run.
//
// The input need not be sorted (live completions finish only roughly in
// order); it is copied, never mutated. Returns 0 when fewer than three
// completions or a zero span make the estimate meaningless — callers fall
// back to the span-based rate.
func SteadyRate(done []float64) float64 {
	if len(done) < 3 {
		return 0
	}
	s := append([]float64(nil), done...)
	sort.Float64s(s)
	span := s[len(s)-1] - s[0]
	if span <= 0 {
		return 0
	}
	w := span / 4
	best := 0.0
	j := 0
	for i := range s {
		if s[i]+w > s[len(s)-1] {
			break // window would hang past the last completion
		}
		if j < i {
			j = i
		}
		for j < len(s) && s[j] <= s[i]+w {
			j++
		}
		// s[i:j] are the completions in [s[i], s[i]+w].
		if r := float64(j-i) / w; r > best {
			best = r
		}
	}
	return best
}
