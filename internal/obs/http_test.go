package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Bus, *MetricsServer) {
	t.Helper()
	b := NewBus()
	m, err := NewMetricsServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return b, m
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// waitCounter polls /debug/vars until the named rago counter reaches want
// (the consume goroutine is asynchronous).
func waitCounter(t *testing.T, m *MetricsServer, name string, want float64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, "http://"+m.Addr()+"/debug/vars")
		var vars struct {
			Rago map[string]any `json:"rago"`
		}
		if err := json.Unmarshal([]byte(body), &vars); err != nil {
			t.Fatalf("bad /debug/vars JSON: %v", err)
		}
		if v, _ := vars.Rago[name].(float64); v >= want {
			return vars.Rago
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter %q never reached %g; have %v", name, want, vars.Rago)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricsServerWindowAndVars(t *testing.T) {
	b, m := newTestServer(t)

	if code, _ := get(t, "http://"+m.Addr()+"/window"); code != http.StatusNotFound {
		t.Errorf("/window before any snapshot: status %d, want 404", code)
	}

	b.Publish(Event{Kind: KindAdmit, T: 1, Req: 0})
	b.Publish(Event{Kind: KindReject, T: 2, Req: 1})
	b.Publish(Event{Kind: KindDecodeFinish, T: 3, Req: 0, Dur: 2})
	b.Publish(Event{Kind: KindWindow, T: 4, N: 1, Track: "telemetry",
		Payload: map[string]any{"qps": 12.5}})

	rago := waitCounter(t, m, "windows", 1)
	for name, want := range map[string]float64{
		"admitted": 1, "rejected": 1, "completed": 1, "events": 4, "bus_published": 4,
	} {
		if v, _ := rago[name].(float64); v != want {
			t.Errorf("rago.%s = %v, want %g", name, rago[name], want)
		}
	}

	code, body := get(t, "http://"+m.Addr()+"/window")
	if code != http.StatusOK {
		t.Fatalf("/window status %d: %s", code, body)
	}
	if !strings.Contains(body, `"kind": "window"`) || !strings.Contains(body, `"qps": 12.5`) {
		t.Errorf("/window body missing snapshot fields: %s", body)
	}

	if code, body := get(t, "http://"+m.Addr()+"/"); code != http.StatusOK || !strings.Contains(body, "/stream") {
		t.Errorf("index: %d %q", code, body)
	}
	if code, _ := get(t, "http://"+m.Addr()+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index status %d", code)
	}
}

// The SSE stream must forward window and switch events (and only the
// control-plane kinds), one named frame each.
func TestMetricsServerStream(t *testing.T) {
	b, m := newTestServer(t)

	resp, err := http.Get("http://" + m.Addr() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}

	b.Publish(Event{Kind: KindEnqueue, T: 0.5, Req: 3}) // not streamable: must not appear
	b.Publish(Event{Kind: KindWindow, T: 1, N: 1, Track: "telemetry"})
	b.Publish(Event{Kind: KindSwitchCommit, T: 2, N: 1, Track: "control",
		Payload: SwitchInfo{Epoch: 1, From: "a", To: "b"}})

	type frame struct{ event, data string }
	frames := make(chan frame, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var f frame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			case line == "" && f.event != "":
				frames <- f
				f = frame{}
			}
		}
	}()
	want := []string{"window", "switch-commit"}
	for _, kind := range want {
		select {
		case f := <-frames:
			if f.event != kind {
				t.Fatalf("stream frame %q, want %q (enqueue leaked into the feed?)", f.event, kind)
			}
			if !strings.Contains(f.data, fmt.Sprintf("%q", kind)) {
				t.Errorf("frame data %s missing its kind", f.data)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream never delivered a %q frame", kind)
		}
	}
}

// A second MetricsServer in the same process must not panic on the global
// expvar registry and must take over the "rago" var.
func TestMetricsServerExpvarReuse(t *testing.T) {
	b1, m1 := newTestServer(t)
	b1.Publish(Event{Kind: KindAdmit, T: 1, Req: 0})
	waitCounter(t, m1, "admitted", 1)
	m1.Close()

	b2, m2 := newTestServer(t)
	b2.Publish(Event{Kind: KindAdmit, T: 1, Req: 0})
	b2.Publish(Event{Kind: KindAdmit, T: 2, Req: 1})
	rago := waitCounter(t, m2, "admitted", 2)
	if v, _ := rago["admitted"].(float64); v != 2 {
		t.Errorf("second server's admitted = %v, want 2 (expvar still bound to the first?)", v)
	}
}
