package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// A nil bus must be inert: never active, publish and stats are no-ops.
func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Publish(Event{Kind: KindAdmit}) // must not panic
	if p, d := b.Stats(); p != 0 || d != 0 {
		t.Fatalf("nil bus stats = (%d, %d), want zeros", p, d)
	}
}

// Active must flip with the first subscriber and back off with the last.
func TestBusActiveTracksSubscribers(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("empty bus reports active")
	}
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	if !b.Active() {
		t.Fatal("bus with subscribers reports inactive")
	}
	s1.Close()
	if !b.Active() {
		t.Fatal("bus lost active with one subscriber remaining")
	}
	s2.Close()
	if b.Active() {
		t.Fatal("bus still active after last subscriber closed")
	}
	// Publishing after all subscribers left must be a counted no-op of
	// zero: Active gates it away entirely.
	b.Publish(Event{Kind: KindAdmit})
	if p, _ := b.Stats(); p != 0 {
		t.Fatalf("published %d events on an inactive bus", p)
	}
}

// Every subscriber receives every event while its buffer has room.
func TestBusFanOut(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe(16)
	s2 := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: KindEnqueue, Req: i})
	}
	s1.Close()
	s2.Close()
	for name, s := range map[string]*Sub{"s1": s1, "s2": s2} {
		got := 0
		for range s.Events() {
			got++
		}
		if got != 10 {
			t.Errorf("%s received %d events, want 10", name, got)
		}
		if s.Dropped() != 0 {
			t.Errorf("%s dropped %d with room to spare", name, s.Dropped())
		}
	}
	if p, d := b.Stats(); p != 10 || d != 0 {
		t.Errorf("bus stats = (%d, %d), want (10, 0)", p, d)
	}
}

// A full subscriber loses events — counted, never blocking the publisher.
func TestBusDropsWhenFull(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(2) // never drained
	fast := b.Subscribe(64)
	for i := 0; i < 20; i++ {
		b.Publish(Event{Kind: KindEnqueue, Req: i})
	}
	if slow.Dropped() != 18 {
		t.Errorf("slow subscriber dropped %d, want 18", slow.Dropped())
	}
	if fast.Dropped() != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", fast.Dropped())
	}
	if _, d := b.Stats(); d != 18 {
		t.Errorf("bus aggregate drops = %d, want 18", d)
	}
	slow.Close()
	fast.Close()
}

// Concurrent publishers and a closing subscriber must not race or panic
// (run under -race in CI).
func TestBusConcurrentPublishClose(t *testing.T) {
	b := NewBus()
	subs := make([]*Sub, 8)
	for i := range subs {
		subs[i] = b.Subscribe(8)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(Event{Kind: KindStageStart, Req: i})
			}
		}()
	}
	for _, s := range subs {
		wg.Add(1)
		go func(s *Sub) {
			defer wg.Done()
			for range s.Events() {
			}
		}(s)
		s.Close()
	}
	wg.Wait()
}

// Double-closing a subscription is safe.
func TestSubCloseIdempotent(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(1)
	s.Close()
	s.Close()
}

// Kind names are total over the declared vocabulary and render into JSON.
func TestKindNames(t *testing.T) {
	for k := KindAdmit; k <= KindWindow; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind renders %q", Kind(200).String())
	}
	raw, err := json.Marshal(Event{Kind: KindDecodePark, T: 1.5, Req: 3, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"decode-park"`) {
		t.Errorf("event JSON %s does not carry the kind name", raw)
	}
}
