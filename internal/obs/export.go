package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Chrome trace_event export: the assembled spans rendered as a Perfetto /
// chrome://tracing -loadable JSON document. Layout:
//
//   - process "resources": one track per serial resource (placement
//     groups, retrieval tiers) showing dispatched batches — the serial
//     ledger guarantees these never overlap — plus one lane per decode
//     slot, with iterative stalls nested inside their decode spans.
//   - process "requests": one track per request (capped by
//     Tracer.RequestTracks) showing its full timeline — queue waits,
//     batch service, decode, stalls — so a single slow request's time
//     attribution (queue wait vs service vs retrieval stall) reads off
//     one lane.
//
// Timestamps are virtual (schedule) microseconds.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	pidResources = 1
	pidRequests  = 2
)

const usec = 1e6 // virtual seconds -> trace microseconds

// ChromeTrace renders the recorded run as Chrome trace_event JSON.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	var b strings.Builder
	if err := t.WriteChromeTrace(&b); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// WriteChromeTrace writes the Chrome trace_event JSON document to w. Load
// the output in https://ui.perfetto.dev (or chrome://tracing).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	reqs := t.Requests()
	doc := chromeTrace{DisplayTimeUnit: "ms"}
	meta := func(pid, tid int, kind, name string) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: kind, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidResources, 0, "process_name", "resources")
	meta(pidRequests, 0, "process_name", "requests")

	// Resource tracks: dedupe per-request spans back into the batches the
	// workers actually dispatched (same track, slot, and interval), so
	// each serial resource renders as a clean non-overlapping lane.
	type batchKey struct {
		track      string
		slot       int
		start, end float64
	}
	type batchAgg struct {
		stage string
		n     int
		reqs  []int
	}
	batches := map[batchKey]*batchAgg{}
	var decodes []Span // decode spans overlap; they get per-slot lanes
	for _, rt := range reqs {
		for _, s := range rt.Spans {
			if s.Track == "decode" {
				decodes = append(decodes, s)
				continue
			}
			k := batchKey{s.Track, s.Slot, s.Start, s.End}
			a := batches[k]
			if a == nil {
				a = &batchAgg{stage: s.Stage, n: s.Batch}
				batches[k] = a
			}
			a.reqs = append(a.reqs, s.Req)
		}
	}
	tracks := map[string]int{}
	var trackNames []string
	for k := range batches {
		if _, ok := tracks[k.track]; !ok {
			tracks[k.track] = 0
			trackNames = append(trackNames, k.track)
		}
	}
	sort.Strings(trackNames)
	for i, name := range trackNames {
		tracks[name] = i + 1
		meta(pidResources, i+1, "thread_name", name)
	}

	keys := make([]batchKey, 0, len(batches))
	for k := range batches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].track != keys[j].track {
			return keys[i].track < keys[j].track
		}
		if keys[i].start != keys[j].start {
			return keys[i].start < keys[j].start
		}
		return keys[i].slot < keys[j].slot
	})
	for _, k := range keys {
		a := batches[k]
		sort.Ints(a.reqs)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: a.stage, Cat: "batch", Ph: "X",
			TS: k.start * usec, Dur: (k.end - k.start) * usec,
			PID: pidResources, TID: tracks[k.track],
			Args: map[string]any{"batch": a.n, "reqs": intsCSV(a.reqs)},
		})
	}

	// Decode slot lanes: greedy interval assignment recovers the slot
	// structure (the runtime leases slots from a pool, so lane identity
	// is a rendering choice, not recorded state).
	sort.SliceStable(decodes, func(i, j int) bool {
		if decodes[i].Start != decodes[j].Start {
			return decodes[i].Start < decodes[j].Start
		}
		return decodes[i].Req < decodes[j].Req
	})
	var laneFree []float64
	baseTID := len(trackNames) + 1
	stallsByReq := map[int][]Stall{}
	for _, rt := range reqs {
		if len(rt.Stalls) > 0 {
			stallsByReq[rt.ID] = rt.Stalls
		}
	}
	for _, s := range decodes {
		lane := -1
		for i, free := range laneFree {
			if free <= s.Start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneFree)
			laneFree = append(laneFree, 0)
			meta(pidResources, baseTID+lane, "thread_name", fmt.Sprintf("decode slot %d", lane))
		}
		laneFree[lane] = s.End
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("decode r%d", s.Req), Cat: "decode", Ph: "X",
			TS: s.Start * usec, Dur: (s.End - s.Start) * usec,
			PID: pidResources, TID: baseTID + lane,
		})
		for _, st := range stallsByReq[s.Req] {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("stall round %d", st.Round), Cat: "stall", Ph: "X",
				TS: st.Park * usec, Dur: (st.Resume - st.Park) * usec,
				PID: pidResources, TID: baseTID + lane,
			})
		}
	}

	// Request tracks: one lane per request, queue waits and services in
	// causal order.
	maxTracks := t.RequestTracks
	if maxTracks == 0 {
		maxTracks = 256
	}
	emitted := 0
	for _, rt := range reqs {
		if maxTracks < 0 || emitted >= maxTracks {
			break
		}
		emitted++
		tid := rt.ID + 1
		meta(pidRequests, tid, "thread_name", fmt.Sprintf("req %d", rt.ID))
		for _, s := range rt.Spans {
			if s.Start > s.Enq {
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "wait " + s.Stage, Cat: "wait", Ph: "X",
					TS: s.Enq * usec, Dur: (s.Start - s.Enq) * usec,
					PID: pidRequests, TID: tid,
				})
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Stage, Cat: "service", Ph: "X",
				TS: s.Start * usec, Dur: (s.End - s.Start) * usec,
				PID: pidRequests, TID: tid,
				Args: map[string]any{"batch": s.Batch},
			})
		}
		for _, st := range rt.Stalls {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("stall round %d", st.Round), Cat: "stall", Ph: "X",
				TS: st.Park * usec, Dur: (st.Resume - st.Park) * usec,
				PID: pidRequests, TID: tid,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func intsCSV(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}
