package obs

import (
	"strings"
	"testing"
)

// feedRequest records a synthetic two-stage request (prefix at slot 0 on
// track "group0", then decode at slot 1) with one iterative stall.
func feedRequest(tr *Tracer, id int, t0 float64) {
	tr.Record(Event{Kind: KindAdmit, T: t0, Req: id})
	tr.Record(Event{Kind: KindEnqueue, T: t0, Req: id, Slot: 0, Stage: "prefix", Track: "group0"})
	tr.Record(Event{Kind: KindStageStart, T: t0 + 0.2, Req: id, Slot: 0, Stage: "prefix", Track: "group0", N: 4})
	tr.Record(Event{Kind: KindStageFinish, T: t0 + 0.5, Req: id, Slot: 0, Stage: "prefix", Track: "group0", N: 4, Dur: 0.3})
	tr.Record(Event{Kind: KindEnqueue, T: t0 + 0.5, Req: id, Slot: 1, Stage: "decode", Track: "decode"})
	tr.Record(Event{Kind: KindDecodeLease, T: t0 + 0.6, Req: id, Slot: 1, Stage: "decode", Track: "decode"})
	tr.Record(Event{Kind: KindDecodePark, T: t0 + 1.0, Req: id, Slot: 1, Stage: "decode", Track: "decode", N: 1})
	tr.Record(Event{Kind: KindDecodeResume, T: t0 + 1.4, Req: id, Slot: 1, Stage: "decode", Track: "decode", N: 1, Dur: 0.4})
	tr.Record(Event{Kind: KindDecodeFinish, T: t0 + 2.6, Req: id, Slot: 1, Stage: "decode", Track: "decode", Dur: 2.0})
}

func TestTracerAssemblesSpans(t *testing.T) {
	tr := NewTracer()
	feedRequest(tr, 7, 10)
	feedRequest(tr, 3, 5)
	reqs := tr.Requests()
	if len(reqs) != 2 {
		t.Fatalf("assembled %d requests, want 2", len(reqs))
	}
	if reqs[0].ID != 3 || reqs[1].ID != 7 {
		t.Fatalf("requests not sorted by ID: %d, %d", reqs[0].ID, reqs[1].ID)
	}
	rt := reqs[1] // id 7, t0 = 10
	if rt.Arrival != 10 {
		t.Errorf("arrival %g, want 10", rt.Arrival)
	}
	if got := rt.StageVisits(); len(got) != 2 || got[0] != "prefix" || got[1] != "decode" {
		t.Errorf("stage visits %v, want [prefix decode]", got)
	}
	p := rt.Spans[0]
	if p.Enq != 10 || p.Start != 10.2 || p.End != 10.5 || p.Batch != 4 || p.Track != "group0" {
		t.Errorf("prefix span %+v", p)
	}
	d := rt.Spans[1]
	if d.Enq != 10.5 || d.Start != 10.6 || d.End != 12.6 || d.Batch != 1 {
		t.Errorf("decode span %+v", d)
	}
	if rt.DecodeStart != 10.6 || rt.Done != 12.6 {
		t.Errorf("decode start/done = %g/%g", rt.DecodeStart, rt.Done)
	}
	if len(rt.Stalls) != 1 || rt.Stalls[0].Round != 1 ||
		rt.Stalls[0].Park != 11 || rt.Stalls[0].Resume != 11.4 {
		t.Errorf("stalls %+v", rt.Stalls)
	}
}

func TestTracerRejectedRequest(t *testing.T) {
	tr := NewTracer()
	tr.Record(Event{Kind: KindReject, T: 2, Req: 9})
	reqs := tr.Requests()
	if len(reqs) != 1 || !reqs[0].Rejected || reqs[0].Arrival != 2 {
		t.Fatalf("rejected request assembled as %+v", reqs)
	}
}

// Attach must drain everything published before Close returns, and a
// second Attach must be refused.
func TestTracerAttachDrains(t *testing.T) {
	b := NewBus()
	tr := NewTracer()
	if err := tr.Attach(b, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(b, 0); err == nil {
		t.Fatal("second Attach succeeded")
	}
	for i := 0; i < 1000; i++ {
		b.Publish(Event{Kind: KindEnqueue, T: float64(i), Req: i})
	}
	tr.Close()
	if got := len(tr.Events()); got != 1000 {
		t.Fatalf("drained %d events, want 1000", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d with a deep buffer", tr.Dropped())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	feedRequest(tr, 0, 0)
	feedRequest(tr, 1, 0) // same batch interval on group0 -> one batch box
	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`"traceEvents"`,
		`"displayTimeUnit": "ms"`,
		`"process_name"`, `"thread_name"`,
		`"resources"`, `"requests"`,
		`"prefix"`, `"decode slot 0"`,
		"wait prefix", "stall round 1",
		`"reqs": "0,1"`, // the two requests dedupe into one batch box
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
	// Deterministic: a second export of the same tracer is byte-identical.
	again, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != out {
		t.Error("chrome trace export is nondeterministic")
	}
}

// RequestTracks caps the per-request tracks without touching resource
// tracks; negative disables them.
func TestChromeTraceRequestTrackCap(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 4; i++ {
		feedRequest(tr, i, float64(i))
	}
	tr.RequestTracks = 2
	capped, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(capped), `"req `); got != 2 {
		t.Errorf("capped export has %d request tracks, want 2", got)
	}
	tr.RequestTracks = -1
	none, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(none), `"req `) {
		t.Error("negative RequestTracks still emitted request tracks")
	}
	if !strings.Contains(string(none), `"prefix"`) {
		t.Error("resource tracks vanished with request tracks disabled")
	}
}
