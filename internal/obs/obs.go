// Package obs is the observability layer of the serving stack: a
// low-overhead typed event bus that the live runtime (internal/serve), the
// discrete-event simulator (internal/sim), and the online controller
// (internal/control) publish onto, per-request span tracing assembled from
// those events (Tracer, exportable as Chrome trace_event JSON viewable in
// Perfetto), and a streaming metrics endpoint (MetricsServer: expvar
// counters, a JSON window snapshot, an SSE stream of windows and plan
// switches, and net/http/pprof).
//
// The bus is designed so instrumentation can stay compiled into the hot
// paths permanently: a nil *Bus — or one with no subscriber attached — is
// a zero-cost no-op (publishers guard event construction on Bus.Active,
// one nil check plus one atomic load), and subscriber channels are
// bounded, so a slow or stuck consumer can never stall the dataplane:
// events it cannot take are dropped and counted, never waited on.
//
// Because both executors publish the same event vocabulary with the same
// stable slot names (engine.Plan.SlotName), a runtime-vs-sim disagreement
// becomes a structural diff of two event streams — or, through the
// Tracer's Chrome export, a visual diff of two timelines.
package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Kind enumerates the event vocabulary shared by every publisher.
type Kind uint8

const (
	// KindAdmit and KindReject record the admission decision for one
	// arrival (Req is the request ID, T its arrival time).
	KindAdmit Kind = iota
	KindReject
	// KindEnqueue records a request entering a slot's queue (Slot/Stage
	// name it, Track is the serving resource, T the queue-entry time).
	KindEnqueue
	// KindStageStart and KindStageFinish bracket one request's service
	// inside a dispatched batch (N is the formed batch size; Finish
	// carries the service time in Dur).
	KindStageStart
	KindStageFinish
	// KindDecodeLease records a sequence acquiring a continuous-batching
	// decode slot (T is the drift-free generation start).
	KindDecodeLease
	// KindDecodePark and KindDecodeResume bracket one iterative
	// decode-loop stall (§5.3): the sequence parks at a trigger position
	// while a retrieval+prefix round batches, then resumes. N is the
	// 1-based round number; Resume carries the stalled seconds in Dur.
	KindDecodePark
	KindDecodeResume
	// KindDecodeFinish records a sequence completing generation and
	// freeing its slot (Dur is the total slot-holding time).
	KindDecodeFinish
	// KindSwitchBegin / KindSwitchCommit / KindSwitchDrain trace one plan
	// hot-swap: the decision, new admissions routing to the new plan, and
	// the retired plan's last in-flight request draining. N is the epoch
	// index; Begin/Commit carry a SwitchInfo payload.
	KindSwitchBegin
	KindSwitchCommit
	KindSwitchDrain
	// KindDecision is one controller tick's decision (DecisionInfo
	// payload), published whether or not it resulted in a switch.
	KindDecision
	// KindWindow is a streamed telemetry window snapshot (the serve
	// Window as payload) — the feed an external autoscaler subscribes to
	// instead of polling.
	KindWindow
	// KindCacheHit / KindCacheMiss record the prefix/KV cache lookup at
	// batch formation for one tagged request (T is the batch-formation
	// time; N is the prefill-token credit granted, 0 on a miss).
	KindCacheHit
	KindCacheMiss
	// KindCacheAnswerHit records an exact-match answer-cache hit
	// short-circuiting the whole pipeline at admission (T is the arrival).
	KindCacheAnswerHit
	// KindShardScatter / KindShardGather bracket one retrieval batch's
	// scatter-gather across index shards (N carries the fanout — the
	// shard count consulted per query); KindShardFallback records the
	// batch skipping unhealthy replicas (N is the fallback pick count)
	// or, with a shard's replicas all down, merging without the shard.
	KindShardScatter
	KindShardGather
	KindShardFallback
)

var kindNames = [...]string{
	KindAdmit:          "admit",
	KindReject:         "reject",
	KindEnqueue:        "enqueue",
	KindStageStart:     "stage-start",
	KindStageFinish:    "stage-finish",
	KindDecodeLease:    "decode-lease",
	KindDecodePark:     "decode-park",
	KindDecodeResume:   "decode-resume",
	KindDecodeFinish:   "decode-finish",
	KindSwitchBegin:    "switch-begin",
	KindSwitchCommit:   "switch-commit",
	KindSwitchDrain:    "switch-drain",
	KindDecision:       "decision",
	KindWindow:         "window",
	KindCacheHit:       "cache-hit",
	KindCacheMiss:      "cache-miss",
	KindCacheAnswerHit: "cache-answer-hit",
	KindShardScatter:   "shard-scatter",
	KindShardGather:    "shard-gather",
	KindShardFallback:  "shard-fallback",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name, so exported streams (SSE,
// trace files) stay self-describing.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one typed observation. Events are small values; publishers
// construct them only when a subscriber is attached (Bus.Active).
type Event struct {
	Kind Kind `json:"kind"`
	// T is the virtual (schedule) time of the observation in seconds.
	T float64 `json:"t"`
	// Req is the request ID; meaningful only on request-scoped kinds
	// (run-scoped events — switches, decisions, windows — leave it 0).
	Req int `json:"req"`
	// Slot is the plan slot index and Stage its stable name
	// (engine.Plan.SlotName); zero-valued on non-stage events.
	Slot  int    `json:"slot,omitempty"`
	Stage string `json:"stage,omitempty"`
	// Track names the execution track: the serving resource for stage
	// events, "decode" for the slot pool, "controller" for decisions.
	Track string `json:"track,omitempty"`
	// N is the event's small-integer payload: batch size for stage
	// events, round number for park/resume, epoch index for switches.
	N int `json:"n,omitempty"`
	// Dur is the event's span length in virtual seconds where one is
	// naturally attached (service time, stall, slot tenure).
	Dur float64 `json:"dur,omitempty"`
	// Payload carries structured detail for window, switch, and decision
	// events (serve.Window, SwitchInfo, DecisionInfo).
	Payload any `json:"payload,omitempty"`
}

// SwitchInfo is the payload of KindSwitchBegin/Commit events.
type SwitchInfo struct {
	// Epoch is the index of the epoch the switch created.
	Epoch int `json:"epoch"`
	// From and To render the retired and activated schedules.
	From string `json:"from"`
	To   string `json:"to"`
}

// DecisionInfo is the payload of KindDecision events: what the controller
// saw and what it chose, every tick.
type DecisionInfo struct {
	// Cur and Want index the plan library before and after the decision
	// (equal on a hold).
	Cur  int `json:"cur"`
	Want int `json:"want"`
	// Reason is "load", "slo", or "hold".
	Reason string `json:"reason"`
	// Rate, P99TTFT, QPS, and InFlight echo the telemetry window the
	// decision read.
	Rate     float64 `json:"rate"`
	P99TTFT  float64 `json:"p99_ttft"`
	QPS      float64 `json:"qps"`
	InFlight int     `json:"in_flight"`
}

// Bus is a fan-out event bus with bounded, drop-counting subscribers.
// Publish never blocks: a subscriber whose channel is full loses that
// event (counted per subscriber and in aggregate), which is the contract
// that lets the serving dataplane publish from its hot paths without a
// consumer ever holding a worker goroutine hostage.
//
// A nil *Bus is valid everywhere and does nothing.
type Bus struct {
	mu     sync.RWMutex
	subs   []*Sub
	active atomic.Bool

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBus builds an empty bus.
func NewBus() *Bus { return &Bus{} }

// Active reports whether any subscriber is attached. Publishers guard
// event construction on it, so an idle bus costs one nil check and one
// atomic load per instrumentation site. A nil bus is never active.
func (b *Bus) Active() bool { return b != nil && b.active.Load() }

// Publish fans the event out to every subscriber, dropping it (and
// counting the drop) at any subscriber whose channel is full. No-op on a
// nil or subscriber-less bus.
func (b *Bus) Publish(ev Event) {
	if !b.Active() {
		return
	}
	b.published.Add(1)
	b.mu.RLock()
	for _, s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.RUnlock()
}

// Subscribe attaches a new subscriber with the given channel capacity
// (buf < 1 uses 1024). The subscriber must either keep draining Events or
// accept drops; Close detaches it.
func (b *Bus) Subscribe(buf int) *Sub {
	if buf < 1 {
		buf = 1024
	}
	s := &Sub{bus: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.active.Store(true)
	b.mu.Unlock()
	return s
}

// Stats returns the cumulative published and dropped event counts (drops
// summed over all subscribers, past and present).
func (b *Bus) Stats() (published, dropped uint64) {
	if b == nil {
		return 0, 0
	}
	return b.published.Load(), b.dropped.Load()
}

// Sub is one bounded subscription on a Bus.
type Sub struct {
	bus     *Bus
	ch      chan Event
	dropped atomic.Uint64
	once    sync.Once
}

// Events is the subscription's receive channel; it is closed by Close.
func (s *Sub) Events() <-chan Event { return s.ch }

// Dropped is how many events this subscriber lost to a full channel.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscriber and closes its channel. Safe to call
// once per subscription from any goroutine; concurrent Publishes either
// see the subscriber (and may still deliver) or do not — the removal and
// the close happen under the same lock Publish iterates under, so no
// send can race the close.
func (s *Sub) Close() {
	s.once.Do(func() {
		b := s.bus
		b.mu.Lock()
		for i, t := range b.subs {
			if t == s {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				break
			}
		}
		b.active.Store(len(b.subs) > 0)
		close(s.ch)
		b.mu.Unlock()
	})
}
